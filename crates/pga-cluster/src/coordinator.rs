//! ZooKeeper-analog coordination service.
//!
//! The paper's HBase deployment coordinates region servers "through the
//! built-in Apache Zookeeper coordination service" (§III-A). This module
//! provides the subset the storage layer needs: a hierarchical namespace of
//! *znodes*, ephemeral nodes tied to session leases, heartbeats, and
//! first-writer-wins leader election. Time is passed in explicitly (millis)
//! so liveness tests are deterministic.

use std::collections::{BTreeMap, VecDeque};

use parking_lot::Mutex;
use std::sync::{Arc, Weak};

/// A client session. Ephemeral znodes die with their session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

/// Coordination errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordinatorError {
    /// Znode already exists (create) .
    NodeExists(String),
    /// Znode missing (get/set/delete).
    NoNode(String),
    /// The session has expired.
    SessionExpired(SessionId),
}

impl std::fmt::Display for CoordinatorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoordinatorError::NodeExists(p) => write!(f, "znode exists: {p}"),
            CoordinatorError::NoNode(p) => write!(f, "no such znode: {p}"),
            CoordinatorError::SessionExpired(s) => write!(f, "session {} expired", s.0),
        }
    }
}

impl std::error::Error for CoordinatorError {}

#[derive(Debug, Clone)]
struct Znode {
    data: Vec<u8>,
    version: u64,
    ephemeral_owner: Option<SessionId>,
}

#[derive(Debug)]
struct SessionState {
    last_heartbeat_ms: u64,
    expired: bool,
}

/// A namespace change observed through a [`WatchHandle`].
///
/// Mirrors ZooKeeper's persistent recursive watches: one registration keeps
/// delivering every event under its prefix (no re-arming), which is what
/// the control plane needs to track `/stats` and `/rs` churn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WatchEvent {
    /// A znode was created under the watched prefix.
    Created(String),
    /// A znode's data changed; carries the new version.
    DataChanged {
        /// Path of the changed znode.
        path: String,
        /// Version after the change.
        version: u64,
    },
    /// A znode was explicitly deleted.
    Deleted(String),
    /// An ephemeral znode vanished because its session lease lapsed.
    SessionExpired(String),
}

impl WatchEvent {
    /// The znode path the event refers to.
    pub fn path(&self) -> &str {
        match self {
            WatchEvent::Created(p) | WatchEvent::Deleted(p) | WatchEvent::SessionExpired(p) => p,
            WatchEvent::DataChanged { path, .. } => path,
        }
    }
}

/// Receiving side of a watch registration. Events accumulate until polled;
/// dropping the handle unregisters the watch on the next delivery attempt.
pub struct WatchHandle {
    queue: Arc<Mutex<VecDeque<WatchEvent>>>,
}

impl WatchHandle {
    /// Drain all events observed since the last poll, in delivery order.
    pub fn poll(&self) -> Vec<WatchEvent> {
        self.queue.lock().drain(..).collect()
    }

    /// Number of undelivered events.
    pub fn pending(&self) -> usize {
        self.queue.lock().len()
    }
}

#[derive(Default)]
struct State {
    znodes: BTreeMap<String, Znode>,
    sessions: BTreeMap<SessionId, SessionState>,
    next_session: u64,
    watches: Vec<(String, Weak<Mutex<VecDeque<WatchEvent>>>)>,
}

impl State {
    /// Deliver `event` to every live watch whose prefix covers its path,
    /// pruning watches whose handles were dropped.
    fn fire(&mut self, event: WatchEvent) {
        self.watches.retain(|(prefix, weak)| {
            let Some(queue) = weak.upgrade() else {
                return false;
            };
            let path = event.path();
            let matches = prefix.is_empty()
                || path == prefix
                || (path.starts_with(prefix.as_str())
                    && path.as_bytes().get(prefix.len()) == Some(&b'/'));
            if matches {
                queue.lock().push_back(event.clone());
            }
            true
        });
    }
}

/// The coordination service. Cheap to clone; all clones share state.
#[derive(Clone, Default)]
pub struct Coordinator {
    state: Arc<Mutex<State>>,
    /// Session lease in milliseconds; a session missing heartbeats longer
    /// than this is expired by [`Coordinator::expire_stale_sessions`].
    lease_ms: u64,
}

impl Coordinator {
    /// Create a coordinator with the given session lease.
    pub fn new(lease_ms: u64) -> Self {
        Coordinator {
            state: Arc::new(Mutex::new(State::default())),
            lease_ms,
        }
    }

    /// Open a session at time `now_ms`.
    pub fn connect(&self, now_ms: u64) -> SessionId {
        let mut st = self.state.lock();
        st.next_session += 1;
        let id = SessionId(st.next_session);
        st.sessions.insert(
            id,
            SessionState {
                last_heartbeat_ms: now_ms,
                expired: false,
            },
        );
        id
    }

    /// Heartbeat a session, extending its lease.
    pub fn heartbeat(&self, session: SessionId, now_ms: u64) -> Result<(), CoordinatorError> {
        let mut st = self.state.lock();
        match st.sessions.get_mut(&session) {
            Some(s) if !s.expired => {
                s.last_heartbeat_ms = now_ms;
                Ok(())
            }
            _ => Err(CoordinatorError::SessionExpired(session)),
        }
    }

    /// Expire sessions whose lease has lapsed at `now_ms`, deleting their
    /// ephemeral znodes. Returns the paths removed (the master watches
    /// these to detect dead region servers).
    pub fn expire_stale_sessions(&self, now_ms: u64) -> Vec<String> {
        let mut st = self.state.lock();
        let lease = self.lease_ms;
        let dead: Vec<SessionId> = st
            .sessions
            .iter()
            .filter(|(_, s)| !s.expired && now_ms.saturating_sub(s.last_heartbeat_ms) > lease)
            .map(|(&id, _)| id)
            .collect();
        let mut removed = Vec::new();
        for id in dead {
            if let Some(s) = st.sessions.get_mut(&id) {
                s.expired = true;
            }
            let paths: Vec<String> = st
                .znodes
                .iter()
                .filter(|(_, z)| z.ephemeral_owner == Some(id))
                .map(|(p, _)| p.clone())
                .collect();
            for p in paths {
                st.znodes.remove(&p);
                // pga-allow(lock-discipline): state → watch-queue is the one global order; firing under the state lock keeps event order matching mutation order
                st.fire(WatchEvent::SessionExpired(p.clone()));
                removed.push(p);
            }
        }
        removed
    }

    /// Register a persistent recursive watch over `prefix` (empty string
    /// watches the whole namespace). Events for every create, data change,
    /// delete, and lease-expiry under the prefix are queued on the handle.
    pub fn watch(&self, prefix: &str) -> WatchHandle {
        let queue = Arc::new(Mutex::new(VecDeque::new()));
        let prefix = prefix.trim_end_matches('/').to_string();
        self.state
            .lock()
            .watches
            .push((prefix, Arc::downgrade(&queue)));
        WatchHandle { queue }
    }

    /// Create a persistent znode.
    pub fn create(&self, path: &str, data: Vec<u8>) -> Result<(), CoordinatorError> {
        self.create_inner(path, data, None)
    }

    /// Create an ephemeral znode owned by `session`.
    pub fn create_ephemeral(
        &self,
        path: &str,
        data: Vec<u8>,
        session: SessionId,
    ) -> Result<(), CoordinatorError> {
        {
            let st = self.state.lock();
            match st.sessions.get(&session) {
                Some(s) if !s.expired => {}
                _ => return Err(CoordinatorError::SessionExpired(session)),
            }
        }
        self.create_inner(path, data, Some(session))
    }

    fn create_inner(
        &self,
        path: &str,
        data: Vec<u8>,
        owner: Option<SessionId>,
    ) -> Result<(), CoordinatorError> {
        let mut st = self.state.lock();
        if st.znodes.contains_key(path) {
            return Err(CoordinatorError::NodeExists(path.to_string()));
        }
        st.znodes.insert(
            path.to_string(),
            Znode {
                data,
                version: 0,
                ephemeral_owner: owner,
            },
        );
        // pga-allow(lock-discipline): state → watch-queue is the one global order; firing under the state lock keeps event order matching mutation order
        st.fire(WatchEvent::Created(path.to_string()));
        Ok(())
    }

    /// Read a znode's data and version.
    pub fn get(&self, path: &str) -> Result<(Vec<u8>, u64), CoordinatorError> {
        let st = self.state.lock();
        st.znodes
            .get(path)
            .map(|z| (z.data.clone(), z.version))
            .ok_or_else(|| CoordinatorError::NoNode(path.to_string()))
    }

    /// Overwrite a znode's data, bumping its version.
    pub fn set(&self, path: &str, data: Vec<u8>) -> Result<u64, CoordinatorError> {
        let mut st = self.state.lock();
        let z = st
            .znodes
            .get_mut(path)
            .ok_or_else(|| CoordinatorError::NoNode(path.to_string()))?;
        z.data = data;
        z.version += 1;
        let version = z.version;
        // pga-allow(lock-discipline): state → watch-queue is the one global order; firing under the state lock keeps event order matching mutation order
        st.fire(WatchEvent::DataChanged {
            path: path.to_string(),
            version,
        });
        Ok(version)
    }

    /// Delete a znode.
    pub fn delete(&self, path: &str) -> Result<(), CoordinatorError> {
        let mut st = self.state.lock();
        st.znodes
            .remove(path)
            .ok_or_else(|| CoordinatorError::NoNode(path.to_string()))?;
        // pga-allow(lock-discipline): state → watch-queue is the one global order; firing under the state lock keeps event order matching mutation order
        st.fire(WatchEvent::Deleted(path.to_string()));
        Ok(())
    }

    /// Create the znode if absent, otherwise overwrite it. Returns the new
    /// version (0 on create). This is the idiom stat-publishing uses every
    /// tick, so it avoids the create-then-set race under one lock.
    pub fn upsert_ephemeral(
        &self,
        path: &str,
        data: Vec<u8>,
        session: SessionId,
    ) -> Result<u64, CoordinatorError> {
        let mut st = self.state.lock();
        match st.sessions.get(&session) {
            Some(s) if !s.expired => {}
            _ => return Err(CoordinatorError::SessionExpired(session)),
        }
        if let Some(z) = st.znodes.get_mut(path) {
            z.data = data;
            z.version += 1;
            let version = z.version;
            // pga-allow(lock-discipline): state → watch-queue is the one global order; firing under the state lock keeps event order matching mutation order
            st.fire(WatchEvent::DataChanged {
                path: path.to_string(),
                version,
            });
            Ok(version)
        } else {
            st.znodes.insert(
                path.to_string(),
                Znode {
                    data,
                    version: 0,
                    ephemeral_owner: Some(session),
                },
            );
            // pga-allow(lock-discipline): state → watch-queue is the one global order; firing under the state lock keeps event order matching mutation order
            st.fire(WatchEvent::Created(path.to_string()));
            Ok(0)
        }
    }

    /// List znodes directly under `prefix` (children, ZooKeeper-style).
    pub fn children(&self, prefix: &str) -> Vec<String> {
        let norm = if prefix.ends_with('/') {
            prefix.to_string()
        } else {
            format!("{prefix}/")
        };
        let st = self.state.lock();
        st.znodes
            .range(norm.clone()..)
            .take_while(|(p, _)| p.starts_with(&norm))
            .filter(|(p, _)| !p[norm.len()..].contains('/'))
            .map(|(p, _)| p.clone())
            .collect()
    }

    /// First-writer-wins leader election on `path`. Returns `true` when
    /// `session` became (or already was) the leader.
    pub fn elect_leader(
        &self,
        path: &str,
        session: SessionId,
        candidate: &[u8],
    ) -> Result<bool, CoordinatorError> {
        match self.create_ephemeral(path, candidate.to_vec(), session) {
            Ok(()) => Ok(true),
            Err(CoordinatorError::NodeExists(_)) => {
                let st = self.state.lock();
                Ok(st
                    .znodes
                    .get(path)
                    .is_some_and(|z| z.ephemeral_owner == Some(session)))
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_get_set_delete_cycle() {
        let c = Coordinator::new(1000);
        c.create("/cfg", b"a".to_vec()).unwrap();
        assert_eq!(c.get("/cfg").unwrap(), (b"a".to_vec(), 0));
        assert_eq!(c.set("/cfg", b"b".to_vec()).unwrap(), 1);
        assert_eq!(c.get("/cfg").unwrap(), (b"b".to_vec(), 1));
        c.delete("/cfg").unwrap();
        assert!(matches!(c.get("/cfg"), Err(CoordinatorError::NoNode(_))));
    }

    #[test]
    fn duplicate_create_rejected() {
        let c = Coordinator::new(1000);
        c.create("/x", vec![]).unwrap();
        assert!(matches!(
            c.create("/x", vec![]),
            Err(CoordinatorError::NodeExists(_))
        ));
    }

    #[test]
    fn ephemeral_node_dies_with_lease() {
        let c = Coordinator::new(100);
        let s = c.connect(0);
        c.create_ephemeral("/rs/node-1", b"alive".to_vec(), s)
            .unwrap();
        // Heartbeat keeps it alive.
        c.heartbeat(s, 80).unwrap();
        assert!(c.expire_stale_sessions(150).is_empty());
        // Silence past the lease kills it.
        let removed = c.expire_stale_sessions(300);
        assert_eq!(removed, vec!["/rs/node-1".to_string()]);
        assert!(matches!(
            c.get("/rs/node-1"),
            Err(CoordinatorError::NoNode(_))
        ));
        // The dead session cannot heartbeat or create again.
        assert!(matches!(
            c.heartbeat(s, 301),
            Err(CoordinatorError::SessionExpired(_))
        ));
        assert!(matches!(
            c.create_ephemeral("/rs/node-1", vec![], s),
            Err(CoordinatorError::SessionExpired(_))
        ));
    }

    #[test]
    fn children_lists_only_direct_descendants() {
        let c = Coordinator::new(1000);
        c.create("/rs/a", vec![]).unwrap();
        c.create("/rs/b", vec![]).unwrap();
        c.create("/rs/b/inner", vec![]).unwrap();
        c.create("/other", vec![]).unwrap();
        assert_eq!(
            c.children("/rs"),
            vec!["/rs/a".to_string(), "/rs/b".to_string()]
        );
    }

    #[test]
    fn leader_election_first_writer_wins() {
        let c = Coordinator::new(1000);
        let s1 = c.connect(0);
        let s2 = c.connect(0);
        assert!(c.elect_leader("/master", s1, b"one").unwrap());
        assert!(!c.elect_leader("/master", s2, b"two").unwrap());
        // Re-election by the holder is idempotent.
        assert!(c.elect_leader("/master", s1, b"one").unwrap());
        // When s1's lease lapses (s2 still heartbeating), s2 can win.
        c.heartbeat(s2, 500).unwrap();
        c.expire_stale_sessions(1400); // s1 silent for 1400ms > lease; s2 only 900ms
        assert!(c.elect_leader("/master", s2, b"two").unwrap());
    }

    #[test]
    fn watch_sees_create_set_delete_under_prefix() {
        let c = Coordinator::new(1000);
        let w = c.watch("/rs");
        c.create("/rs/a", b"x".to_vec()).unwrap();
        c.create("/other", vec![]).unwrap(); // outside prefix: invisible
        c.set("/rs/a", b"y".to_vec()).unwrap();
        c.delete("/rs/a").unwrap();
        assert_eq!(
            w.poll(),
            vec![
                WatchEvent::Created("/rs/a".into()),
                WatchEvent::DataChanged {
                    path: "/rs/a".into(),
                    version: 1
                },
                WatchEvent::Deleted("/rs/a".into()),
            ]
        );
        assert!(w.poll().is_empty()); // drained
    }

    #[test]
    fn watch_prefix_does_not_match_sibling_names() {
        let c = Coordinator::new(1000);
        let w = c.watch("/rs");
        c.create("/rsx", vec![]).unwrap(); // same byte prefix, different node
        assert!(w.poll().is_empty());
    }

    #[test]
    fn watch_reports_lease_expiry_as_session_expired() {
        let c = Coordinator::new(100);
        let s = c.connect(0);
        c.create_ephemeral("/stats/n1", b"{}".to_vec(), s).unwrap();
        let w = c.watch("/stats");
        c.expire_stale_sessions(500);
        assert_eq!(
            w.poll(),
            vec![WatchEvent::SessionExpired("/stats/n1".into())]
        );
    }

    #[test]
    fn dropped_watch_is_pruned() {
        let c = Coordinator::new(1000);
        let w = c.watch("/a");
        drop(w);
        c.create("/a/x", vec![]).unwrap(); // must not panic or leak
        let w2 = c.watch("/a");
        c.create("/a/y", vec![]).unwrap();
        assert_eq!(w2.pending(), 1);
    }

    #[test]
    fn upsert_ephemeral_creates_then_updates() {
        let c = Coordinator::new(1000);
        let s = c.connect(0);
        let w = c.watch("/stats");
        assert_eq!(
            c.upsert_ephemeral("/stats/n1", b"a".to_vec(), s).unwrap(),
            0
        );
        assert_eq!(
            c.upsert_ephemeral("/stats/n1", b"b".to_vec(), s).unwrap(),
            1
        );
        assert_eq!(c.get("/stats/n1").unwrap().0, b"b".to_vec());
        assert_eq!(w.poll().len(), 2);
        // Ephemeral: dies with the session.
        c.expire_stale_sessions(5000);
        assert!(c.get("/stats/n1").is_err());
    }

    #[test]
    fn persistent_nodes_survive_session_expiry() {
        let c = Coordinator::new(50);
        let s = c.connect(0);
        c.create("/persist", vec![1]).unwrap();
        c.create_ephemeral("/eph", vec![2], s).unwrap();
        c.expire_stale_sessions(1000);
        assert!(c.get("/persist").is_ok());
        assert!(c.get("/eph").is_err());
    }
}
