//! Simulated cluster substrate.
//!
//! The paper runs on a 32-node HDFS/HBase/OpenTSDB deployment (§III-A):
//! region servers with RPC queues, coordinated through Apache ZooKeeper,
//! fronted by a reverse proxy for backpressure. This crate provides the
//! equivalent building blocks for an in-process cluster:
//!
//! * [`rpc`] — typed RPC servers backed by real threads and **bounded**
//!   request queues. Queue overflow is a first-class event: sustained
//!   overload *crashes* the server, reproducing the paper's §III-B finding
//!   that "Regionservers \[crash\] due to overloaded RPC Queues" when no
//!   backpressure is applied.
//! * [`coordinator`] — a ZooKeeper analog: a namespace of znodes with
//!   ephemeral ownership, session leases and heartbeats, used by the
//!   storage master for liveness detection and leader election.
//! * [`sim`] — a deterministic discrete-time queueing simulator for
//!   cluster-scale experiments (10–70 nodes). Experiments that sweep node
//!   counts beyond the host's core count (Fig. 2 reproduction, salting and
//!   proxy ablations) use this model, fed with *real* per-server key
//!   routing shares computed by the storage layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod rpc;
pub mod sim;

pub use coordinator::{Coordinator, CoordinatorError, SessionId};
pub use rpc::{
    default_clock_ms, AdmissionConfig, ClockMs, RequestClass, RpcError, RpcHandle,
    RpcServerBuilder, RpcStats, ServerState,
};
pub use sim::{
    hotspot_shares, simulate_ingestion, simulate_overload, uniform_shares, IngestReport,
    OverloadConfig, OverloadMode, OverloadReport, ProxyMode, SimClusterConfig, SimServerState,
};

/// Identifier of a node (region server / TSD daemon) in the cluster.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node-{}", self.0)
    }
}
