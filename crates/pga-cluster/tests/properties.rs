//! Property tests for the queueing simulator: conservation laws and
//! monotonicity that must hold for any workload and cluster shape.

use proptest::prelude::*;

use pga_cluster::sim::{
    hotspot_shares, simulate_ingestion, uniform_shares, ProxyMode, SimClusterConfig,
};

fn config(nodes: usize) -> SimClusterConfig {
    SimClusterConfig::paper_calibration(nodes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn samples_are_conserved(
        nodes in 1usize..20,
        samples in 1_000.0f64..500_000.0,
        rate_exp in 3.0f64..7.0,
        buffered in any::<bool>(),
    ) {
        let mode = if buffered { ProxyMode::Buffered } else { ProxyMode::None };
        let offered_rate = 10f64.powf(rate_exp);
        let r = simulate_ingestion(&config(nodes), &uniform_shares(nodes), samples, offered_rate, mode);
        // Every offered sample is either ingested or dropped.
        prop_assert!((r.ingested + r.dropped - samples).abs() < 1.0,
            "conservation: {} + {} vs {}", r.ingested, r.dropped, samples);
        // Per-server accounting matches the totals.
        let processed: f64 = r.servers.iter().map(|s| s.processed).sum();
        let dropped: f64 = r.servers.iter().map(|s| s.dropped).sum();
        prop_assert!((processed - r.ingested).abs() < 1.0);
        prop_assert!((dropped - r.dropped).abs() < 1.0);
    }

    #[test]
    fn buffered_mode_never_drops_or_crashes(
        nodes in 1usize..16,
        samples in 1_000.0f64..300_000.0,
    ) {
        let r = simulate_ingestion(
            &config(nodes),
            &uniform_shares(nodes),
            samples,
            f64::INFINITY,
            ProxyMode::Buffered,
        );
        prop_assert_eq!(r.dropped, 0.0);
        prop_assert_eq!(r.crashes, 0);
        prop_assert!((r.ingested - samples).abs() < 1.0);
    }

    #[test]
    fn throughput_monotone_in_nodes(
        base in 2usize..10,
        samples in 100_000.0f64..400_000.0,
    ) {
        let t1 = simulate_ingestion(&config(base), &uniform_shares(base), samples, f64::INFINITY, ProxyMode::Buffered).throughput();
        let t2 = simulate_ingestion(&config(base * 2), &uniform_shares(base * 2), samples, f64::INFINITY, ProxyMode::Buffered).throughput();
        prop_assert!(t2 > t1, "doubling nodes must raise throughput: {t1} vs {t2}");
    }

    #[test]
    fn hotspot_never_beats_uniform(
        nodes in 2usize..20,
        hot in 0.5f64..1.0,
        samples in 50_000.0f64..300_000.0,
    ) {
        let uni = simulate_ingestion(&config(nodes), &uniform_shares(nodes), samples, f64::INFINITY, ProxyMode::Buffered);
        let hot_r = simulate_ingestion(&config(nodes), &hotspot_shares(nodes, hot), samples, f64::INFINITY, ProxyMode::Buffered);
        prop_assert!(hot_r.throughput() <= uni.throughput() * 1.01,
            "hotspot {} vs uniform {}", hot_r.throughput(), uni.throughput());
        prop_assert!(hot_r.max_server_share() >= uni.max_server_share() - 1e-9);
    }

    #[test]
    fn timeline_is_monotone_nondecreasing(
        nodes in 1usize..12,
        samples in 10_000.0f64..200_000.0,
    ) {
        let r = simulate_ingestion(&config(nodes), &uniform_shares(nodes), samples, f64::INFINITY, ProxyMode::Buffered);
        for w in r.timeline.windows(2) {
            prop_assert!(w[1].0 >= w[0].0);
            prop_assert!(w[1].1 >= w[0].1 - 1e-9);
        }
        if let Some(last) = r.timeline.last() {
            prop_assert!((last.1 - r.ingested).abs() < 1.0);
        }
    }

    #[test]
    fn deterministic_for_same_inputs(
        nodes in 1usize..10,
        samples in 1_000.0f64..100_000.0,
    ) {
        let a = simulate_ingestion(&config(nodes), &uniform_shares(nodes), samples, f64::INFINITY, ProxyMode::Buffered);
        let b = simulate_ingestion(&config(nodes), &uniform_shares(nodes), samples, f64::INFINITY, ProxyMode::Buffered);
        prop_assert_eq!(a.ingested, b.ingested);
        prop_assert_eq!(a.duration_secs, b.duration_secs);
        prop_assert_eq!(a.crashes, b.crashes);
    }
}
