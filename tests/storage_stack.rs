//! Storage-stack integration: TSDB semantics over the distributed store
//! under flushes, compactions, splits and server failure.

use pga_cluster::coordinator::Coordinator;
use pga_cluster::NodeId;
use pga_minibase::{Client, Master, RegionConfig, ServerConfig, TableDescriptor};
use pga_tsdb::{Aggregator, KeyCodec, KeyCodecConfig, QueryFilter, Tsd, TsdConfig, UidTable};

fn stack(nodes: usize, salt_buckets: u8) -> (Master, Tsd, Coordinator) {
    let codec = KeyCodec::new(
        KeyCodecConfig {
            salt_buckets,
            row_span_secs: 3600,
        },
        UidTable::new(),
    );
    let coord = Coordinator::new(10_000);
    let mut master = Master::bootstrap(nodes, ServerConfig::default(), coord.clone(), 0);
    master.create_table(&TableDescriptor {
        name: "tsdb".into(),
        split_points: codec.split_points(),
        region_config: RegionConfig {
            memstore_flush_bytes: 4096, // tiny: force frequent flushes
            compaction_file_threshold: 3,
            max_versions: usize::MAX,
        },
    });
    let tsd = Tsd::new(codec, Client::connect(&master), TsdConfig::default());
    (master, tsd, coord)
}

#[test]
fn data_survives_flush_and_compaction_cycles() {
    let (master, tsd, _c) = stack(3, 6);
    // Enough writes to trip many flushes and compactions.
    for unit in 0..20u32 {
        let u = unit.to_string();
        for ts in 0..50u64 {
            tsd.put(
                "energy",
                &[("unit", &u), ("sensor", "0")],
                ts,
                (unit as f64) + ts as f64,
            )
            .unwrap();
        }
    }
    let series = tsd.query("energy", &QueryFilter::any(), 0, 100).unwrap();
    assert_eq!(series.len(), 20);
    for s in &series {
        assert_eq!(s.points.len(), 50);
        let unit: f64 = s.tags.get("unit").unwrap().parse().unwrap();
        assert_eq!(s.points[7].value, unit + 7.0);
    }
    master.shutdown();
}

#[test]
fn downsampled_query_aggregates_correctly() {
    let (master, tsd, _c) = stack(2, 4);
    for ts in 0..60u64 {
        tsd.put("energy", &[("unit", "1"), ("sensor", "2")], ts, ts as f64)
            .unwrap();
    }
    let series = tsd.query("energy", &QueryFilter::any(), 0, 59).unwrap();
    let ds = series[0].downsample(10, Aggregator::Avg);
    assert_eq!(ds.points.len(), 6);
    // Window [0,10): mean of 0..9 = 4.5.
    assert_eq!(ds.points[0].value, 4.5);
    assert_eq!(ds.points[5].value, 54.5);
    let max = series[0].downsample(30, Aggregator::Max);
    assert_eq!(max.points[0].value, 29.0);
    assert_eq!(max.points[1].value, 59.0);
    master.shutdown();
}

#[test]
fn region_split_keeps_series_intact() {
    let (mut master, tsd, _c) = stack(2, 2);
    for unit in 0..30u32 {
        let u = unit.to_string();
        for ts in 0..10u64 {
            tsd.put("energy", &[("unit", &u), ("sensor", "1")], ts, 1.0)
                .unwrap();
        }
    }
    // Split every region once.
    let rids: Vec<_> = master.directory().read().iter().map(|i| i.id).collect();
    let mut splits = 0;
    for rid in rids {
        if master.split_region(rid).is_some() {
            splits += 1;
        }
    }
    assert!(splits > 0, "at least one region should split");
    let series = tsd.query("energy", &QueryFilter::any(), 0, 100).unwrap();
    assert_eq!(series.len(), 30);
    assert!(series.iter().all(|s| s.points.len() == 10));
    master.shutdown();
}

#[test]
fn server_failure_recovers_through_wal_and_reassignment() {
    let (mut master, tsd, _c) = stack(3, 6);
    for unit in 0..12u32 {
        let u = unit.to_string();
        tsd.put("energy", &[("unit", &u), ("sensor", "0")], 5, unit as f64)
            .unwrap();
    }
    // Node 0 stops heartbeating; others stay alive.
    master.heartbeat(NodeId(1), 20_000);
    master.heartbeat(NodeId(2), 20_000);
    let moved = master.tick(20_000);
    assert!(!moved.is_empty(), "node 0's regions reassigned");
    // All data (including unflushed memstore contents recovered via the
    // WAL) remains queryable. The client needs fresh handles because the
    // cluster membership changed.
    let tsd2 = Tsd::new(
        tsd.codec().clone(),
        Client::connect(&master),
        TsdConfig::default(),
    );
    let series = tsd2.query("energy", &QueryFilter::any(), 0, 100).unwrap();
    assert_eq!(series.len(), 12, "all series survive the failover");
    master.shutdown();
}

#[test]
fn uid_table_shared_across_tsd_instances() {
    let (master, tsd, _c) = stack(2, 4);
    // A second TSD over the same codec/uid table sees the first's writes.
    let tsd2 = Tsd::new(
        tsd.codec().clone(),
        Client::connect(&master),
        TsdConfig::default(),
    );
    tsd.put("energy", &[("unit", "9"), ("sensor", "3")], 1, 42.0)
        .unwrap();
    let series = tsd2
        .query("energy", &QueryFilter::any().with("unit", "9"), 0, 10)
        .unwrap();
    assert_eq!(series.len(), 1);
    assert_eq!(series[0].points[0].value, 42.0);
    master.shutdown();
}
