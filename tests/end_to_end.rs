//! End-to-end integration: generator → proxy → TSDB → detector → viz.

use pga_platform::{Monitor, PlatformConfig};
use pga_sensorgen::FaultClass;

fn monitor(seed: u64) -> Monitor {
    let mut config = PlatformConfig::demo(seed);
    config.fleet.units = 6;
    config.fleet.sensors_per_unit = 48;
    Monitor::new(config).unwrap()
}

#[test]
fn full_loop_detects_injected_faults_with_low_false_alarms() {
    let mut m = monitor(101);
    m.ingest_range(0, 650);
    m.train(149).unwrap();
    let outcomes = m.evaluate_at(649).unwrap();
    assert_eq!(outcomes.len(), 6);

    let fleet = m.fleet();
    let mut missed_fault_units = 0;
    let mut healthy_flags = 0;
    for out in &outcomes {
        let spec = fleet.fault(out.unit);
        match spec.class {
            FaultClass::Healthy => healthy_flags += out.flags.len(),
            FaultClass::SharpShift => {
                // Every sharply-shifted unit must be detected by t=649.
                let hits = out.flags.iter().filter(|f| spec.affects(f.sensor)).count();
                if hits == 0 {
                    missed_fault_units += 1;
                }
            }
            FaultClass::GradualDegradation => {
                // Drift magnitude at t≈650 may or may not be detectable;
                // no hard assertion, covered by the E5 harness.
            }
        }
    }
    assert_eq!(missed_fault_units, 0, "sharp shifts must be caught");
    assert!(
        healthy_flags <= 2,
        "healthy units flagged {healthy_flags} sensors"
    );
    m.shutdown();
}

#[test]
fn anomalies_are_written_back_to_the_tsdb() {
    let mut m = monitor(103);
    m.ingest_range(0, 650);
    m.train(149).unwrap();
    m.evaluate_at(649).unwrap();
    assert!(!m.anomalies().is_empty(), "fleet contains faulted units");
    // The anomaly metric is now queryable — the viz tool reads it from
    // the same store (§IV-A).
    let rec = &m.anomalies()[0];
    let page = m.machine_page_data(rec.unit, 649, 100, 12).unwrap();
    let panel_with_anomaly = page
        .panels
        .iter()
        .find(|p| p.sensor == rec.sensor)
        .expect("flagged sensor panel present");
    assert!(
        panel_with_anomaly.anomalies.contains(&(rec.timestamp)),
        "anomaly timestamp on the panel"
    );
    assert!(page.detail.is_some(), "drill-down selected");
    m.shutdown();
}

#[test]
fn machine_page_html_renders_flags_in_critical_color() {
    let mut m = monitor(107);
    m.ingest_range(0, 650);
    m.train(149).unwrap();
    m.evaluate_at(649).unwrap();
    let unit = m.anomalies()[0].unit;
    let html = m.machine_page_html(unit, 649, 200, 16).unwrap();
    assert!(html.contains(&format!("Machine {unit}")));
    assert!(
        html.contains("var(--status-critical)"),
        "anomaly markers styled"
    );
    assert!(html.contains("<svg"), "sparklines rendered");
    m.shutdown();
}

#[test]
fn fleet_overview_reflects_unit_health() {
    let mut m = monitor(109);
    m.ingest_range(0, 650);
    m.train(149).unwrap();
    m.evaluate_at(649).unwrap();
    let overview = m.fleet_overview_data(1000.0);
    assert_eq!(overview.units.len(), 6);
    let healthy_units = m.fleet().units_with_class(FaultClass::Healthy);
    for u in &overview.units {
        if healthy_units.contains(&u.unit) {
            assert!(
                u.flagged_sensors <= 1,
                "healthy unit {} shows {} flags",
                u.unit,
                u.flagged_sensors
            );
        }
    }
    // Shifted units past onset should not be uniformly healthy.
    let shifted = m.fleet().units_with_class(FaultClass::SharpShift);
    let loud = overview
        .units
        .iter()
        .filter(|u| shifted.contains(&u.unit) && u.flagged_sensors > 0)
        .count();
    assert!(
        loud > 0,
        "at least one shifted unit visible in the overview"
    );
    m.shutdown();
}

#[test]
fn top_alerts_rank_faulted_units_first() {
    let mut m = monitor(127);
    m.ingest_range(0, 650);
    m.train(149).unwrap();
    m.evaluate_at(649).unwrap();
    let alerts = m.top_alerts(10, 649, 10_000);
    assert!(!alerts.is_empty());
    // Every alert names a genuinely faulted unit (healthy units may raise
    // at most stray single-sensor warnings that rank below).
    let healthy = m.fleet().units_with_class(FaultClass::Healthy);
    if let Some(top) = alerts.first() {
        assert!(!healthy.contains(&top.unit), "top alert on a healthy unit");
        assert!(top.sensors.len() >= 2, "top alert should be a broad fault");
    }
    // Ranking is by breadth first.
    for w in alerts.windows(2) {
        assert!(w[0].sensors.len() >= w[1].sensors.len() || w[0].min_p_value <= w[1].min_p_value);
    }
    m.shutdown();
}

#[test]
fn repeated_evaluation_is_idempotent_on_history() {
    let mut m = monitor(113);
    m.ingest_range(0, 650);
    m.train(149).unwrap();
    let first = m.evaluate_at(649).unwrap();
    let second = m.evaluate_at(649).unwrap();
    // Same window, same model → identical p-values.
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.p_values, b.p_values);
        assert_eq!(a.rejected, b.rejected);
    }
    m.shutdown();
}
