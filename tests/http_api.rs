//! End-to-end HTTP: the dashboard pages and the OpenTSDB-compatible JSON
//! API served over a real socket.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use parking_lot::Mutex;

use pga_platform::{Monitor, PlatformConfig};
use pga_viz::server::{DashboardServer, HttpRequest, HttpResponse, RequestHandler};

fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    write!(
        s,
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    let (head, body) = buf.split_once("\r\n\r\n").unwrap();
    let status: u16 = head
        .lines()
        .next()
        .unwrap()
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    (status, body.to_string())
}

fn serving_monitor() -> (DashboardServer, Arc<Mutex<Monitor>>) {
    let mut config = PlatformConfig::demo(55);
    config.fleet.units = 4;
    config.fleet.sensors_per_unit = 24;
    let mut monitor = Monitor::new(config).unwrap();
    monitor.ingest_range(0, 600);
    monitor.train(149).unwrap();
    monitor.evaluate_at(599).unwrap();
    let monitor = Arc::new(Mutex::new(monitor));
    let routes: RequestHandler = {
        let monitor = monitor.clone();
        Arc::new(move |req: &HttpRequest| {
            let m = monitor.lock();
            match (req.method.as_str(), req.path.as_str()) {
                ("GET", "/") => Some(HttpResponse::html(m.fleet_overview_html(0.0))),
                ("GET", "/cluster") => Some(HttpResponse::html(m.cluster_page_html())),
                ("GET", "/heatmap") => Some(HttpResponse::html(m.heatmap_html(0, 599, 50))),
                ("GET", p) if p.starts_with("/machine/") => {
                    let Ok(unit) = p["/machine/".len()..].parse::<u32>() else {
                        return Some(HttpResponse::error_json(
                            404,
                            "not_found",
                            "machine id must be a non-negative integer",
                        ));
                    };
                    if unit >= 4 {
                        return Some(HttpResponse::error_json(
                            404,
                            "not_found",
                            &format!("unit {unit} outside fleet of 4"),
                        ));
                    }
                    Some(match m.machine_page_html(unit, 599, 100, 8) {
                        Ok(html) => HttpResponse::html(html),
                        Err(e) => HttpResponse::error_json(503, "degraded", &e.to_string()),
                    })
                }
                ("POST", "/api/put") => Some(match pga_tsdb::handle_put(m.tsd(), &req.body) {
                    Ok(n) => HttpResponse::json(format!("{{\"success\":{n}}}")),
                    Err(e) => HttpResponse::json_status(e.status(), e.to_json()),
                }),
                ("POST", "/api/query") => {
                    // Served by the pga-query engine, like the pga CLI.
                    Some(
                        match pga_tsdb::handle_query_with(&**m.engine(), &req.body) {
                            Ok(json) => HttpResponse::json(json),
                            Err(e) => HttpResponse::json_status(e.status(), e.to_json()),
                        },
                    )
                }
                _ => None,
            }
        })
    };
    let server = DashboardServer::start_with(0, routes).unwrap();
    (server, monitor)
}

#[test]
fn dashboard_and_api_over_one_socket() {
    let (server, monitor) = serving_monitor();
    let addr = server.addr();

    // Fleet overview.
    let (status, body) = request(addr, "GET", "/", "");
    assert_eq!(status, 200);
    assert!(body.contains("Fleet overview"));

    // Machine page.
    let (status, body) = request(addr, "GET", "/machine/0", "");
    assert_eq!(status, 200);
    assert!(body.contains("Machine 0"));

    // Cluster replication page.
    let (status, body) = request(addr, "GET", "/cluster", "");
    assert_eq!(status, 200);
    assert!(body.contains("Cluster replication"));
    assert!(body.contains("replication factor"));

    // Heatmap page.
    let (status, body) = request(addr, "GET", "/heatmap", "");
    assert_eq!(status, 200);
    assert!(body.contains("Fleet anomaly heatmap"));
    assert!(body.contains("<svg"));

    // Query the raw sensor data that the pipeline ingested.
    let (status, body) = request(
        addr,
        "POST",
        "/api/query",
        r#"{"start":0,"end":10,"queries":[{"metric":"energy","tags":{"unit":"1","sensor":"3"}}]}"#,
    );
    assert_eq!(status, 200);
    let series: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(series.as_array().unwrap().len(), 1);
    let dps = series[0]["dps"].as_object().unwrap();
    assert_eq!(dps.len(), 11);
    // Values match the generator exactly.
    let expect = monitor.lock().fleet().sample(1, 3, 5);
    assert!((dps["5"].as_f64().unwrap() - expect).abs() < 1e-12);

    // Anomalies written back by the detector are visible through the API.
    let (status, body) = request(
        addr,
        "POST",
        "/api/query",
        r#"{"start":0,"end":1000,"queries":[{"metric":"anomaly","tags":{}}]}"#,
    );
    assert_eq!(status, 200);
    let series: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert!(
        !series.as_array().unwrap().is_empty(),
        "detector anomalies queryable over HTTP"
    );

    // Write through the API, read it back.
    let (status, _) = request(
        addr,
        "POST",
        "/api/put",
        r#"{"metric":"external","timestamp":42,"value":7.5,"tags":{"source":"curl"}}"#,
    );
    assert_eq!(status, 200);
    let (status, body) = request(
        addr,
        "POST",
        "/api/query",
        r#"{"start":0,"end":100,"queries":[{"metric":"external","tags":{}}]}"#,
    );
    assert_eq!(status, 200);
    assert!(body.contains("7.5"));

    // Errors surface as OpenTSDB-style JSON with the right status.
    let (status, body) = request(addr, "POST", "/api/query", "not json at all");
    assert_eq!(status, 400);
    assert!(body.contains("\"error\""));

    // Bad machine ids are typed JSON errors, not empty 404 pages: a
    // client can tell "no such unit" from "no data yet".
    let (status, body) = request(addr, "GET", "/machine/999", "");
    assert_eq!(status, 404);
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["error"]["code"], 404);
    assert_eq!(v["error"]["type"], "not_found");
    let (status, body) = request(addr, "GET", "/machine/banana", "");
    assert_eq!(status, 404);
    assert!(body.contains("\"error\""));

    // The serving engine answered the API traffic, and its counters flow
    // into control-plane telemetry (cache hit ratio, scatter-gather
    // fan-out in NodeStats).
    let stats = monitor.lock().engine().stats();
    assert!(stats.queries > 0);
    assert!(stats.fanout_total > 0, "queries scatter across salt shards");
    let reg = pga_control::MetricsRegistry::new(0);
    reg.record_query_serving(
        stats.cache_hits,
        stats.cache_misses,
        stats.fanout_total,
        stats.partials,
    );
    let node = reg.snapshot(0, 0);
    assert_eq!(node.query_fanout, stats.fanout_total);
    assert_eq!(node.query_cache_hits, stats.cache_hits);
    assert_eq!(node.query_partials, 0, "healthy stack serves no partials");

    server.stop();
    monitor.lock().shutdown();
}
