//! Cross-crate statistical integration: the E5 claim on real generator
//! data — FDR control reduces false alarms dramatically versus
//! uncorrected testing while keeping (most of) the detection power that
//! Bonferroni sacrifices.

use pga_detect::{train_unit, OnlineEvaluator};
use pga_sensorgen::{FaultClass, Fleet, FleetConfig};
use pga_stats::{evaluate_procedure, Procedure, Rejections, TrialAggregate};

fn fleet() -> Fleet {
    Fleet::new(FleetConfig {
        units: 24,
        sensors_per_unit: 64,
        ..FleetConfig::paper_scale(2024)
    })
}

/// Run every procedure over every unit's post-onset window; aggregate
/// empirical FDR / FWER / power against generator ground truth.
fn run_procedures(fleet: &Fleet, eval_t: u64) -> Vec<(Procedure, TrialAggregate)> {
    let mut aggs: Vec<(Procedure, TrialAggregate)> = Procedure::all()
        .into_iter()
        .map(|p| (p, TrialAggregate::default()))
        .collect();
    for unit in 0..fleet.config().units {
        let obs = fleet.observation_window(unit, 149, 150);
        let model = train_unit(unit, &obs).unwrap();
        let window = fleet.observation_window(unit, eval_t, 50);
        // p-values are procedure-independent; compute once via BH evaluator.
        let ev = OnlineEvaluator::new(model, Procedure::BenjaminiHochberg, 0.05);
        let out = ev.evaluate(&window);
        let truth = fleet.truth_row(unit, eval_t, 1.0);
        for (proc, agg) in aggs.iter_mut() {
            let rej: Rejections = proc.apply(&out.p_values, 0.05);
            agg.add(&evaluate_procedure(*proc, &rej, &truth));
        }
    }
    aggs
}

#[test]
fn fdr_cuts_false_alarms_versus_uncorrected() {
    let fleet = fleet();
    let aggs = run_procedures(&fleet, 700);
    let get = |p: Procedure| {
        aggs.iter()
            .find(|(q, _)| *q == p)
            .map(|(_, a)| a.clone())
            .unwrap()
    };
    let unc = get(Procedure::Uncorrected);
    let bh = get(Procedure::BenjaminiHochberg);
    let bon = get(Procedure::Bonferroni);

    // The paper's core claim: FDR "significantly reduces the number of
    // false alarms" relative to naive per-test α.
    assert!(
        bh.mean_false_positives < unc.mean_false_positives / 5.0,
        "BH false alarms {} vs uncorrected {}",
        bh.mean_false_positives,
        unc.mean_false_positives
    );
    // And the empirical FDR is controlled near the target q.
    assert!(
        bh.empirical_fdr <= 0.10,
        "empirical FDR {}",
        bh.empirical_fdr
    );
    // While power stays at least as high as Bonferroni's.
    assert!(
        bh.mean_power >= bon.mean_power - 1e-12,
        "BH power {} < Bonferroni power {}",
        bh.mean_power,
        bon.mean_power
    );
    // Uncorrected testing raises alarms on (virtually) every trial family.
    assert!(
        unc.empirical_fwer > 0.8,
        "uncorrected FWER {}",
        unc.empirical_fwer
    );
}

#[test]
fn sharp_faults_are_detected_with_high_power_by_bh() {
    let fleet = fleet();
    let mut detected = 0usize;
    let mut total = 0usize;
    for unit in fleet.units_with_class(FaultClass::SharpShift) {
        let spec = *fleet.fault(unit);
        let obs = fleet.observation_window(unit, 149, 150);
        let model = train_unit(unit, &obs).unwrap();
        let ev = OnlineEvaluator::new(model, Procedure::BenjaminiHochberg, 0.05);
        let out = ev.evaluate(&fleet.observation_window(unit, spec.onset + 59, 50));
        for s in spec.group_start..spec.group_start + spec.group_len {
            total += 1;
            if out.rejected[s as usize] {
                detected += 1;
            }
        }
    }
    let power = detected as f64 / total as f64;
    assert!(power > 0.95, "sharp-shift power {power}");
}

#[test]
fn by_procedure_is_safe_under_the_correlated_faults() {
    // The generator's faults are correlated across sensors (§II-A);
    // Benjamini–Yekutieli remains valid under arbitrary dependence and
    // must flag no more than BH.
    let fleet = fleet();
    let aggs = run_procedures(&fleet, 700);
    let bh = aggs
        .iter()
        .find(|(p, _)| *p == Procedure::BenjaminiHochberg)
        .unwrap();
    let by = aggs
        .iter()
        .find(|(p, _)| *p == Procedure::BenjaminiYekutieli)
        .unwrap();
    assert!(by.1.empirical_fdr <= bh.1.empirical_fdr + 1e-12);
    assert!(by.1.mean_power <= bh.1.mean_power + 1e-12);
    assert!(
        by.1.empirical_fdr <= 0.05,
        "BY empirical FDR {}",
        by.1.empirical_fdr
    );
}

#[test]
fn false_alarm_probability_matches_paper_arithmetic() {
    // §IV: one sensor at α=0.05 → 5%; ten sensors → 40%.
    let single = pga_stats::family_wise_false_alarm_probability(0.05, 1);
    let ten = pga_stats::family_wise_false_alarm_probability(0.05, 10);
    assert!((single - 0.05).abs() < 1e-12);
    assert!((ten - 0.40).abs() < 0.005);
}
