//! Reproduce Figure 3: the machine page for a faulted unit.
//!
//! "An overview of the machine page showing sample sensor readings for
//! machine 80. The time line of values show real time values for each
//! sensor of the machine and points where anomalies occurred are flagged
//! in red." The output is written to `target/machine_page.html` — open it
//! in a browser to see the status bar, the sparkline grid with red
//! anomaly markers, and the drill-down detail chart.
//!
//! ```text
//! cargo run --release --example machine_page
//! ```

use pga_platform::{Monitor, PlatformConfig};
use pga_sensorgen::FaultClass;

fn main() {
    let mut config = PlatformConfig::demo(80);
    config.fleet.units = 8;
    config.fleet.sensors_per_unit = 48;
    let mut monitor = Monitor::new(config).expect("valid config");

    monitor.ingest_range(0, 700);
    monitor.train(149).expect("train");

    // Pick a sharply-shifted unit — the "machine 80" of our fleet — and
    // evaluate a few windows after its onset so anomalies accumulate.
    let unit = monitor.fleet().units_with_class(FaultClass::SharpShift)[0];
    let onset = monitor.fleet().fault(unit).onset;
    for k in 0..4u64 {
        let t_eval = (onset + 60 + k * 40).min(699);
        monitor.evaluate_at(t_eval).expect("evaluate");
    }
    let flagged: Vec<u32> = {
        let mut v: Vec<u32> = monitor
            .anomalies()
            .iter()
            .filter(|a| a.unit == unit)
            .map(|a| a.sensor)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    println!("machine {unit} (sharp shift at t={onset}): flagged sensors {flagged:?}");

    // Render the page over the window that covers the fault.
    let html = monitor
        .machine_page_html(unit, 699, 300, 24)
        .expect("render machine page");
    std::fs::create_dir_all("target").ok();
    let path = std::path::Path::new("target/machine_page.html");
    std::fs::write(path, &html).expect("write page");
    println!(
        "machine page written to {} ({} bytes)",
        path.display(),
        html.len()
    );
    monitor.shutdown();
}
