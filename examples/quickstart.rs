//! Quickstart: the full platform loop in ~40 lines.
//!
//! Generates a small fleet, ingests its sensor stream through the reverse
//! proxy into the TSDB, trains the FDR detector offline, evaluates a live
//! window, and prints what was flagged.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pga_platform::{Monitor, PlatformConfig};

fn main() {
    // A laptop-scale configuration: 8 units × 64 sensors, 4 storage nodes.
    let config = PlatformConfig::demo(42);
    let mut monitor = Monitor::new(config).expect("valid config");

    // 1. Ingest the first 600 ticks (1 Hz sensor samples) through the
    //    proxy → TSD daemons → region servers.
    let report = monitor.ingest_range(0, 600);
    println!(
        "ingested {} samples at {:.0} samples/sec",
        report.samples, report.throughput
    );

    // 2. Offline training on the first 150 ticks, read back from storage.
    monitor.train(149).expect("training succeeds");

    // 3. Online evaluation of the window ending at tick 599 — well past
    //    every fault onset (200..500), so faulted units light up.
    let outcomes = monitor.evaluate_at(599).expect("evaluation succeeds");
    for out in &outcomes {
        if out.flags.is_empty() {
            continue;
        }
        let fault = monitor.fleet().fault(out.unit);
        println!(
            "unit {:>2} [{}]: {} sensors flagged: {:?}",
            out.unit,
            fault.class.name(),
            out.flags.len(),
            out.flags.iter().map(|f| f.sensor).collect::<Vec<_>>()
        );
    }

    // 4. How did we do against ground truth?
    let mut true_hits = 0;
    let mut false_alarms = 0;
    for out in &outcomes {
        for flag in &out.flags {
            if monitor.fleet().truth(out.unit, flag.sensor, 599, 1.0) {
                true_hits += 1;
            } else {
                false_alarms += 1;
            }
        }
    }
    println!("true detections: {true_hits}, false alarms: {false_alarms}");
    monitor.shutdown();
}
