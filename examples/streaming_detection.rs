//! Streaming online training — the paper's §VI ongoing work ("migrating
//! our anomaly detection implementation to Spark Streaming for online
//! training"), demonstrated with the incremental trainer.
//!
//! The streaming trainer ingests rows one at a time (and merges partial
//! trainers, as a distributed stream would), converging to the same model
//! as batch training; detection quality follows.
//!
//! ```text
//! cargo run --release --example streaming_detection
//! ```

use pga_detect::{train_unit, OnlineEvaluator, StreamingTrainer};
use pga_sensorgen::{FaultClass, Fleet, FleetConfig};
use pga_stats::Procedure;

fn main() {
    let fleet = Fleet::new(FleetConfig {
        units: 6,
        sensors_per_unit: 64,
        ..FleetConfig::paper_scale(99)
    });
    let unit = fleet.units_with_class(FaultClass::SharpShift)[0];
    let spec = *fleet.fault(unit);
    println!(
        "unit {unit}: sharp shift of {}σ at t={}",
        spec.step, spec.onset
    );

    // Batch training (the paper's current system).
    let obs = fleet.observation_window(unit, 149, 150);
    let batch_model = train_unit(unit, &obs).unwrap();

    // Streaming training: two partial trainers (as if two stream
    // partitions), merged — Chan's parallel moment combination.
    let mut left = StreamingTrainer::new(unit, obs.cols());
    let mut right = StreamingTrainer::new(unit, obs.cols());
    for r in 0..obs.rows() {
        if r % 2 == 0 {
            left.update(obs.row(r));
        } else {
            right.update(obs.row(r));
        }
    }
    left.merge(&right);
    let stream_model = left.finish().unwrap();

    let mean_err: f64 = batch_model
        .means
        .iter()
        .zip(&stream_model.means)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    println!("max |batch − streaming| mean difference: {mean_err:.2e}");

    // Both models detect the fault identically.
    let window = fleet.observation_window(unit, spec.onset + 49, 50);
    for (name, model) in [("batch", batch_model), ("streaming", stream_model)] {
        let ev = OnlineEvaluator::new(model, Procedure::BenjaminiHochberg, 0.05);
        let out = ev.evaluate(&window);
        let mut sensors: Vec<u32> = out.flags.iter().map(|f| f.sensor).collect();
        sensors.sort_unstable();
        println!("{name:>9} model flags: {sensors:?}");
    }
    println!(
        "ground-truth faulted sensors: {:?}",
        (spec.group_start..spec.group_start + spec.group_len).collect::<Vec<_>>()
    );
}
