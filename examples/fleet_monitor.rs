//! Fleet monitoring scenario: the paper's intro workload.
//!
//! A fleet of gas-turbine-like units streams sensor data; the platform
//! ingests continuously, periodically evaluates every unit under FDR
//! control, accumulates the anomaly log, and renders the fleet-overview
//! control center to `target/fleet_overview.html`.
//!
//! ```text
//! cargo run --release --example fleet_monitor
//! ```

use pga_platform::{Monitor, PlatformConfig};
use pga_sensorgen::FaultClass;

fn main() {
    let mut config = PlatformConfig::demo(2026);
    config.fleet.units = 12;
    config.fleet.sensors_per_unit = 64;
    let mut monitor = Monitor::new(config).expect("valid config");

    // Continuous ingestion in chunks of 100 ticks, evaluating after each.
    println!("tick  ingest-rate     flags  (cumulative anomalies)");
    monitor.ingest_range(0, 200);
    monitor.train(149).expect("train");
    let mut evaluated = 0u64;
    for chunk in 0..8u64 {
        let t0 = 200 + chunk * 100;
        let report = monitor.ingest_range(t0, t0 + 100);
        let t_eval = t0 + 99;
        let outcomes = monitor.evaluate_at(t_eval).expect("evaluate");
        evaluated += outcomes.iter().map(|o| o.samples_scored).sum::<u64>();
        let flags: usize = outcomes.iter().map(|o| o.flags.len()).sum();
        println!(
            "{:>4}  {:>9.0}/s  {:>6}  ({})",
            t_eval,
            report.throughput,
            flags,
            monitor.anomalies().len()
        );
    }

    // Summarise per fault class: healthy units should be quiet, faulted
    // units loud once their onset has passed.
    for class in [
        FaultClass::Healthy,
        FaultClass::GradualDegradation,
        FaultClass::SharpShift,
    ] {
        let units = monitor.fleet().units_with_class(class);
        let anomalies: usize = monitor
            .anomalies()
            .iter()
            .filter(|a| units.contains(&a.unit))
            .count();
        println!(
            "{:>20}: {} units, {} anomaly records",
            class.name(),
            units.len(),
            anomalies
        );
    }

    // The §V-A "most concerning anomalies" view.
    println!("top alerts:");
    for alert in monitor.top_alerts(3, 999, 2_000) {
        println!(
            "  unit {:>3} [{}]: {} sensors, strongest p={:.1e}, last at t={}",
            alert.unit,
            alert.severity.label(),
            alert.sensors.len(),
            alert.min_p_value.max(1e-300),
            alert.last_seen
        );
    }

    // Render the control center.
    let html = monitor.fleet_overview_html(evaluated as f64);
    let path = std::path::Path::new("target/fleet_overview.html");
    std::fs::create_dir_all("target").ok();
    std::fs::write(path, html).expect("write overview");
    println!("fleet overview written to {}", path.display());
    monitor.shutdown();
}
