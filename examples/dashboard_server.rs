//! Serve the live dashboard and the OpenTSDB-compatible API over HTTP
//! (§V-A: "a web application that is available on both desktop and mobile
//! devices").
//!
//! Routes:
//!   GET  /              — fleet overview
//!   GET  /cluster       — cluster replication page
//!   GET  /machine/<id>  — machine page (Figure 3)
//!   POST /api/put       — OpenTSDB-style datapoint ingestion (JSON)
//!   POST /api/query     — OpenTSDB-style range query (JSON)
//!
//! ```text
//! cargo run --release --example dashboard_server            # serve 30 s on :8087
//! PGA_SERVE_SECS=600 cargo run --release --example dashboard_server
//!
//! curl -XPOST localhost:8087/api/query \
//!   -d '{"start":0,"end":700,"queries":[{"metric":"anomaly","tags":{}}]}'
//! ```

use std::sync::Arc;

use parking_lot::Mutex;

use pga_platform::{Monitor, PlatformConfig};
use pga_viz::server::{DashboardServer, HttpRequest, HttpResponse, RequestHandler};

fn main() {
    let mut config = PlatformConfig::demo(7);
    config.fleet.units = 10;
    config.fleet.sensors_per_unit = 48;
    let mut monitor = Monitor::new(config).expect("valid config");
    monitor.ingest_range(0, 700);
    monitor.train(149).expect("train");
    for t_eval in [400u64, 500, 600, 699] {
        monitor.evaluate_at(t_eval).expect("evaluate");
    }
    let evaluated: u64 = 4 * 10 * 48 * 50;
    let monitor = Arc::new(Mutex::new(monitor));

    let routes: RequestHandler = {
        let monitor = monitor.clone();
        Arc::new(move |req: &HttpRequest| {
            let m = monitor.lock();
            match (req.method.as_str(), req.path.as_str()) {
                ("GET", "/") => Some(HttpResponse::html(m.fleet_overview_html(evaluated as f64))),
                ("GET", "/cluster") => Some(HttpResponse::html(m.cluster_page_html())),
                ("GET", "/heatmap") => Some(HttpResponse::html(m.heatmap_html(0, 699, 50))),
                ("GET", p) if p.starts_with("/machine/") => {
                    let unit: u32 = p["/machine/".len()..].parse().ok()?;
                    if unit >= m.config().fleet.units {
                        return None;
                    }
                    m.machine_page_html(unit, 699, 300, 24)
                        .ok()
                        .map(HttpResponse::html)
                }
                ("POST", "/api/put") => Some(match pga_tsdb::handle_put(m.tsd(), &req.body) {
                    Ok(n) => HttpResponse::json(format!("{{\"success\":{n}}}")),
                    Err(e) => HttpResponse::json_status(e.status(), e.to_json()),
                }),
                ("POST", "/api/query") => Some(match pga_tsdb::handle_query(m.tsd(), &req.body) {
                    Ok(json) => HttpResponse::json(json),
                    Err(e) => HttpResponse::json_status(e.status(), e.to_json()),
                }),
                _ => None,
            }
        })
    };

    let server = DashboardServer::start_with(8087, routes.clone())
        .or_else(|_| DashboardServer::start_with(0, routes))
        .expect("bind dashboard server");
    println!("dashboard at http://{}/", server.addr());
    println!("machine pages at http://{}/machine/<0..9>", server.addr());
    println!("anomaly heatmap at http://{}/heatmap", server.addr());
    println!("cluster replication at http://{}/cluster", server.addr());
    println!(
        "OpenTSDB-style API at http://{}/api/put and /api/query",
        server.addr()
    );

    let secs: u64 = std::env::var("PGA_SERVE_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    println!("serving for {secs} seconds…");
    std::thread::sleep(std::time::Duration::from_secs(secs));
    server.stop();
    monitor.lock().shutdown();
}
